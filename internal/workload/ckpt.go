package workload

import "pageseer/internal/ckpt"

// Checkpointer is implemented by generators that can serialize their mutable
// state. All generators NewGenerator returns implement it; the interface
// exists so callers holding a Generator can snapshot without knowing the
// concrete type.
type Checkpointer interface {
	Snapshot(w *ckpt.Writer)
	Restore(r *ckpt.Reader)
}

// Snapshot serializes the generator's mutable state: the trace RNG, the
// burst cursor, each phase window's position, and the PhaseShift
// permutation. Everything else (profile, scramble, lane geometry) is derived
// from the profile at construction and is rebuilt identically by
// NewGenerator.
func (g *gen) Snapshot(w *ckpt.Writer) {
	w.Section("workload.gen")
	w.U64(g.r.s)
	w.Int(g.page)
	w.Int(g.remaining)
	w.Int(g.lineCur)
	w.Int(g.lane)
	w.Int(g.stride)
	w.Bool(g.usePair)
	w.Int(g.pairOf)
	w.Int(g.writes)
	w.Int(len(g.perm))
	for _, v := range g.perm {
		w.U32(uint32(v))
	}
	w.Int(len(g.lanes))
	for _, l := range g.lanes {
		w.Int(l.activeOff)
		w.Int(l.start)
		w.Int(l.pass)
		w.Int(l.cursor)
		w.U64(l.phases)
	}
}

// Restore rehydrates the state written by Snapshot into a generator freshly
// built with the same profile/footprint/seed.
func (g *gen) Restore(r *ckpt.Reader) {
	r.Section("workload.gen")
	g.r.s = r.U64()
	g.page = r.Int()
	g.remaining = r.Int()
	g.lineCur = r.Int()
	g.lane = r.Int()
	g.stride = r.Int()
	g.usePair = r.Bool()
	g.pairOf = r.Int()
	g.writes = r.Int()
	if n := r.Int(); n != len(g.perm) {
		r.Failf("workload: snapshot perm length %d, generator has %d", n, len(g.perm))
		return
	}
	for i := range g.perm {
		g.perm[i] = int32(r.U32())
	}
	if n := r.Int(); n != len(g.lanes) {
		r.Failf("workload: snapshot lane count %d, generator has %d", n, len(g.lanes))
		return
	}
	for _, l := range g.lanes {
		l.activeOff = r.Int()
		l.start = r.Int()
		l.pass = r.Int()
		l.cursor = r.Int()
		l.phases = r.U64()
	}
}
