// Package mempod reimplements MemPod (Prodromou et al., HPCA 2017) as
// configured by the PageSeer paper's Section IV-B: the memory is split into
// pods, each running the Majority Element Algorithm with 64 counters over
// its access stream; every 50us the MEA-identified hot NVM segments migrate
// to DRAM at 2KB granularity, with any-to-any remapping inside the pod, a
// 32KB remap cache, and (optimistically, as the paper grants) a zero-latency
// inverted mapping table.
package mempod

// MEA implements the Majority Element Algorithm of Karp, Papadimitriou and
// Shenker (counter-based frequent-element sketch): an element already
// tracked increments its counter; a new element takes a free counter; if
// none is free, every counter decrements (evicting zeros). Elements still
// tracked at the end of an interval are the frequent ones.
type MEA struct {
	capacity int
	counts   map[uint64]uint32

	Increments uint64
	Decrements uint64
}

// NewMEA builds a sketch with the given counter count (64 in the paper).
func NewMEA(capacity int) *MEA {
	return &MEA{capacity: capacity, counts: make(map[uint64]uint32)}
}

// Observe feeds one element occurrence into the sketch.
func (m *MEA) Observe(e uint64) {
	if _, ok := m.counts[e]; ok {
		m.counts[e]++
		m.Increments++
		return
	}
	if len(m.counts) < m.capacity {
		m.counts[e] = 1
		m.Increments++
		return
	}
	m.Decrements++
	for k, v := range m.counts {
		if v <= 1 {
			delete(m.counts, k)
		} else {
			m.counts[k] = v - 1
		}
	}
}

// Len returns the number of tracked elements.
func (m *MEA) Len() int { return len(m.counts) }

// Count returns e's current counter (0 if untracked).
func (m *MEA) Count(e uint64) uint32 { return m.counts[e] }

// Frequent returns the tracked elements with count >= minCount, unordered.
func (m *MEA) Frequent(minCount uint32) []uint64 {
	out := make([]uint64, 0, len(m.counts))
	for e, c := range m.counts {
		if c >= minCount {
			out = append(out, e)
		}
	}
	return out
}

// Reset clears the sketch for the next interval.
func (m *MEA) Reset() { m.counts = make(map[uint64]uint32) }
