package mempod

import (
	"fmt"
	"sort"

	"pageseer/internal/ckpt"
)

func sortedSegs[V any](m map[seg]V) []seg {
	keys := make([]seg, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// snapshotState serializes the sketch: its counters (sorted by element) and
// the increment/decrement totals.
func (m *MEA) snapshotState(w *ckpt.Writer) {
	keys := make([]uint64, 0, len(m.counts))
	for k := range m.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.Int(len(keys))
	for _, k := range keys {
		w.U64(k)
		w.U32(m.counts[k])
	}
	w.U64(m.Increments)
	w.U64(m.Decrements)
}

func (m *MEA) restoreState(r *ckpt.Reader) {
	m.counts = make(map[uint64]uint32)
	for n := r.Int(); n > 0 && r.Err() == nil; n-- {
		k := r.U64()
		m.counts[k] = r.U32()
	}
	m.Increments = r.U64()
	m.Decrements = r.U64()
}

// Snapshot serializes MemPod's warm state: the segment remap (both
// directions), each pod's MEA sketch and victim cursor, the remap-cache
// residency, the interval clock, and the statistics. It refuses a
// non-quiesced manager (in-flight migrations or queued interval work).
func (m *MemPod) Snapshot(w *ckpt.Writer) error {
	if len(m.inflight) != 0 || len(m.pending) != 0 {
		return fmt.Errorf("mempod: %d migration(s) in flight, %d queued; snapshot requires quiescence",
			len(m.inflight), len(m.pending))
	}
	w.Section("mempod")
	if err := m.remapCache.Snapshot(w); err != nil {
		return err
	}
	loc := sortedSegs(m.location)
	w.Int(len(loc))
	for _, s := range loc {
		w.U64(uint64(s))
		w.U64(uint64(m.location[s]))
	}
	occ := sortedSegs(m.occupant)
	w.Int(len(occ))
	for _, s := range occ {
		w.U64(uint64(s))
		w.U64(uint64(m.occupant[s]))
	}
	w.Int(len(m.pods))
	for i := range m.pods {
		m.pods[i].mea.snapshotState(w)
		w.U64(uint64(m.pods[i].nextVictim))
	}
	w.U64(m.lastTick)
	w.U64(m.stats.Migrations)
	w.U64(m.stats.MigrationsDropped)
	w.U64(m.stats.Intervals)
	return nil
}

// Restore rehydrates the state written by Snapshot into a freshly built
// manager.
func (m *MemPod) Restore(r *ckpt.Reader) {
	r.Section("mempod")
	m.remapCache.Restore(r)
	m.location = make(map[seg]seg)
	for n := r.Int(); n > 0 && r.Err() == nil; n-- {
		s := seg(r.U64())
		m.location[s] = seg(r.U64())
	}
	m.occupant = make(map[seg]seg)
	for n := r.Int(); n > 0 && r.Err() == nil; n-- {
		s := seg(r.U64())
		m.occupant[s] = seg(r.U64())
	}
	if n := r.Int(); n != len(m.pods) {
		r.Failf("mempod: snapshot has %d pod(s), built %d", n, len(m.pods))
		return
	}
	for i := range m.pods {
		m.pods[i].mea.restoreState(r)
		m.pods[i].nextVictim = seg(r.U64())
	}
	m.lastTick = r.U64()
	m.stats.Migrations = r.U64()
	m.stats.MigrationsDropped = r.U64()
	m.stats.Intervals = r.U64()
}
