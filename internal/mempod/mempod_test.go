package mempod

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pageseer/internal/cache"
	"pageseer/internal/engine"
	"pageseer/internal/hmc"
	"pageseer/internal/mem"
	"pageseer/internal/memsim"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.RemapEntries = 128
	cfg.RemapTableBytes = 8 << 10
	cfg.IntervalCycles = 20_000
	return cfg
}

func testRig() (*engine.Sim, *hmc.Controller, *MemPod) {
	sim := engine.New()
	osm := mem.NewOS(mem.Map{DRAMBytes: 2 << 20, NVMBytes: 16 << 20}, 16)
	ctl := hmc.NewController(sim.Lane(0), osm, memsim.DRAMConfig(), memsim.NVMConfig(), hmc.DefaultSwapEngineConfig())
	m := New(ctl, testConfig())
	return sim, ctl, m
}

func nvmSeg(ctl *hmc.Controller, i int) mem.Addr {
	return mem.Addr(ctl.Layout.DRAMBytes) + mem.Addr(i)*SegmentBytes
}

func miss(sim *engine.Sim, ctl *hmc.Controller, a mem.Addr) {
	ctl.Access(a, false, cache.Meta{PID: 1}, nil)
	sim.Drain(0)
}

func TestMEAMajority(t *testing.T) {
	m := NewMEA(4)
	// Element 7 appears more than everything else combined: it must survive.
	for i := 0; i < 100; i++ {
		m.Observe(7)
		m.Observe(uint64(100 + i)) // unique noise
	}
	if m.Count(7) == 0 {
		t.Fatal("majority element evicted")
	}
	hot := m.Frequent(2)
	found := false
	for _, h := range hot {
		if h == 7 {
			found = true
		}
	}
	if !found {
		t.Fatalf("majority element not frequent: %v", hot)
	}
}

func TestMEADecrementOnFull(t *testing.T) {
	m := NewMEA(2)
	m.Observe(1)
	m.Observe(2)
	m.Observe(3) // full: all decrement; 1,2 at count 1 -> evicted
	if m.Len() != 0 {
		t.Fatalf("Len = %d after global decrement, want 0", m.Len())
	}
	if m.Decrements != 1 {
		t.Fatalf("Decrements = %d", m.Decrements)
	}
}

func TestMEAReset(t *testing.T) {
	m := NewMEA(4)
	m.Observe(1)
	m.Reset()
	if m.Len() != 0 || m.Count(1) != 0 {
		t.Fatal("Reset did not clear")
	}
}

// Property: MEA guarantees any element with frequency > 1/(capacity+1) of
// the stream survives (the classical Misra-Gries/MEA bound).
func TestMEAFrequencyBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cap := rng.Intn(16) + 4
		m := NewMEA(cap)
		n := 800
		heavy := uint64(9999)
		heavyCount := n/(cap+1) + cap + 1 // strictly above the bound
		stream := make([]uint64, 0, n)
		for i := 0; i < heavyCount; i++ {
			stream = append(stream, heavy)
		}
		for len(stream) < n {
			stream = append(stream, uint64(rng.Intn(500)))
		}
		rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })
		for _, e := range stream {
			m.Observe(e)
		}
		return m.Count(heavy) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalMigration(t *testing.T) {
	sim, ctl, m := testRig()
	hot := nvmSeg(ctl, 40)
	// Heat the segment within one interval, then cross the boundary.
	for i := 0; i < 30; i++ {
		miss(sim, ctl, hot)
	}
	sim.RunUntil(sim.Now() + 2*m.cfg.IntervalCycles)
	miss(sim, ctl, hot) // lazy tick fires the interval migration
	sim.Drain(0)
	if m.Stats().Migrations == 0 {
		t.Fatal("no migration after a hot interval")
	}
	if got := m.TranslateLine(hot); !ctl.Layout.IsDRAM(got) {
		t.Fatalf("hot segment still in NVM at %#x", uint64(got))
	}
	if err := ctl.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestNoMigrationBeforeInterval(t *testing.T) {
	sim, ctl, m := testRig()
	hot := nvmSeg(ctl, 40)
	for i := 0; i < 30; i++ {
		ctl.Access(hot, false, cache.Meta{PID: 1}, nil)
	}
	sim.Drain(0)
	// All within the first interval: MemPod waits for the boundary
	// (the rigidity Section V-A criticises).
	if m.Stats().Migrations != 0 {
		t.Fatal("migrated before the interval boundary")
	}
}

func TestMigrationsStayInPod(t *testing.T) {
	sim, ctl, m := testRig()
	// Heat several segments in different pods; after migration each must
	// sit in a DRAM slot of its own pod.
	hots := []mem.Addr{nvmSeg(ctl, 40), nvmSeg(ctl, 41), nvmSeg(ctl, 42), nvmSeg(ctl, 43)}
	for round := 0; round < 2; round++ {
		for i := 0; i < 30; i++ {
			for _, h := range hots {
				miss(sim, ctl, h)
			}
		}
		sim.RunUntil(sim.Now() + 2*m.cfg.IntervalCycles)
	}
	miss(sim, ctl, hots[0])
	sim.Drain(0)
	for _, h := range hots {
		s := segOf(h)
		loc := m.locate(s)
		if loc == s {
			continue // not migrated (victim scarcity is fine)
		}
		if m.podOf(loc) != m.podOf(s) {
			t.Fatalf("segment %d migrated across pods to %d", s, loc)
		}
	}
	if err := ctl.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestHotDRAMDataNotVictimised(t *testing.T) {
	sim, ctl, m := testRig()
	// A DRAM segment that is itself hot must not be chosen as a victim for
	// an NVM segment in the same pod and interval.
	pod0DRAM := mem.Addr(1 << 20) // DRAM, above metadata
	s := segOf(pod0DRAM)
	pi := m.podOf(s)
	// find an NVM segment in the same pod
	var hot mem.Addr
	for i := 0; i < 16; i++ {
		a := nvmSeg(ctl, 80+i)
		if m.podOf(segOf(a)) == pi {
			hot = a
			break
		}
	}
	for i := 0; i < 30; i++ {
		miss(sim, ctl, pod0DRAM)
		miss(sim, ctl, hot)
	}
	sim.RunUntil(sim.Now() + 2*m.cfg.IntervalCycles)
	miss(sim, ctl, hot)
	sim.Drain(0)
	if m.occupantOf(s) != s {
		t.Fatal("hot DRAM segment was displaced")
	}
}

// Property: MemPod's remap state always matches the data (oracle), all
// requests complete, under random traffic with interval crossings.
func TestMemPodIntegrityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sim, ctl, _ := testRig()
		want, got := 0, 0
		for op := 0; op < 400; op++ {
			var a mem.Addr
			if rng.Intn(3) == 0 {
				a = mem.Addr(rng.Intn(1<<20) + (1 << 20))
			} else {
				a = nvmSeg(ctl, rng.Intn(256))
			}
			a &= ^mem.Addr(63)
			want++
			ctl.Access(a, rng.Intn(4) == 0, cache.Meta{PID: rng.Intn(2)}, func() { got++ })
			if rng.Intn(5) == 0 {
				sim.RunUntil(sim.Now() + uint64(rng.Intn(30_000)))
			}
			if rng.Intn(60) == 0 {
				sim.Drain(0)
				if err := ctl.VerifyIntegrity(); err != nil {
					t.Log(err)
					return false
				}
			}
		}
		sim.Drain(0)
		if err := ctl.VerifyIntegrity(); err != nil {
			t.Log(err)
			return false
		}
		return want == got
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFreezePageImmediateWhenIdle(t *testing.T) {
	sim, ctl, _ := testRig()
	done := false
	ctl.BeginDMA(1234, func() { done = true })
	sim.Drain(0)
	if !done {
		t.Fatal("idle freeze did not complete immediately")
	}
	ctl.EndDMA(1234)
}
