package mempod

import (
	"fmt"
	"sort"

	"pageseer/internal/engine"
	"pageseer/internal/hmc"
	"pageseer/internal/mem"
	"pageseer/internal/mmu"
	"pageseer/internal/obs/ledger"
)

// SegmentBytes is MemPod's migration granularity.
const SegmentBytes = 2048

const segShift = 11

// Config holds MemPod's parameters (Section IV-B of the PageSeer paper).
type Config struct {
	// Pods is the number of independent pods the memory is divided into.
	Pods int
	// MEACounters per pod (64).
	MEACounters int
	// IntervalCycles between migration decisions (50us = 100K CPU cycles
	// at 2GHz).
	IntervalCycles uint64
	// MinCount filters MEA survivors before migration.
	MinCount uint32
	// RemapEntries and RemapWays give the remap cache geometry (32KB).
	RemapEntries int
	RemapWays    int
	RemapLatency uint64
	// RemapTableBytes sizes the DRAM-backed remap table.
	RemapTableBytes uint64
	// MaxMigrationsPerInterval bounds one interval's burst per pod.
	MaxMigrationsPerInterval int
}

// DefaultConfig returns the Section IV-B configuration.
func DefaultConfig() Config {
	return Config{
		Pods:                     4,
		MEACounters:              64,
		IntervalCycles:           100_000,
		MinCount:                 2,
		RemapEntries:             8192,
		RemapWays:                4,
		RemapLatency:             2,
		RemapTableBytes:          512 << 10,
		MaxMigrationsPerInterval: 32,
	}
}

// Scale shrinks the remap cache with the memory system.
func (c Config) Scale(factor int) Config {
	if factor <= 1 {
		return c
	}
	root := 1
	for (root+1)*(root+1) <= factor {
		root++
	}
	factor = root
	if s := c.RemapEntries / factor; s > 0 {
		c.RemapEntries = s
	} else {
		c.RemapEntries = 1
	}
	if s := c.RemapTableBytes / uint64(factor); s >= 4096 {
		c.RemapTableBytes = s
	} else {
		c.RemapTableBytes = 4096
	}
	return c
}

// Stats counts MemPod activity.
type Stats struct {
	Migrations        uint64
	MigrationsDropped uint64 // engine at capacity during a burst
	Intervals         uint64
}

type seg uint64

type pod struct {
	mea *MEA
	// DRAM slot allocation cursor for victim choice.
	nextVictim seg
}

type job struct {
	segs    []seg
	waiters []func()
	lid     uint64 // swap-provenance record ID (0 when the ledger is off)
	pid     uint64 // pagemap pending-swap handle (0 when the pagemap is off)
}

// MemPod is the baseline manager.
type MemPod struct {
	lane *engine.Lane // shared back-end shard (lane 0)
	ctl  *hmc.Controller
	cfg  Config

	remapCache *hmc.MetaCache
	region     hmc.MetaRegion

	fastSegs  seg
	totalSegs seg
	pods      []pod
	lastTick  uint64

	location map[seg]seg
	occupant map[seg]seg
	inflight map[seg]*job

	// pending holds interval migrations waiting for a free swap buffer;
	// hotness is re-checked against the sketch state at start time.
	pending []pendingMig

	stats Stats
}

type pendingMig struct {
	pod int
	s   seg
	hot map[seg]bool
}

// New installs a MemPod manager on the controller.
func New(ctl *hmc.Controller, cfg Config) *MemPod {
	m := &MemPod{
		lane:      ctl.Lane,
		ctl:       ctl,
		cfg:       cfg,
		fastSegs:  seg(ctl.Layout.DRAMBytes / SegmentBytes),
		totalSegs: seg(ctl.Layout.Total() / SegmentBytes),
		location:  make(map[seg]seg),
		occupant:  make(map[seg]seg),
		inflight:  make(map[seg]*job),
	}
	m.region = ctl.AllocMetaRegion(cfg.RemapTableBytes, 4)
	m.remapCache = hmc.NewMetaCache(ctl.Lane, hmc.MetaCacheConfig{
		Name: "MemPodRemap", Entries: cfg.RemapEntries, Ways: cfg.RemapWays,
		HitLatency: cfg.RemapLatency, EntriesPerLine: 16, // 4B segment entries
	}, m.region, ctl.IssueLine)
	m.pods = make([]pod, cfg.Pods)
	for i := range m.pods {
		m.pods[i] = pod{mea: NewMEA(cfg.MEACounters)}
	}
	ctl.SetManager(m)
	return m
}

// Name implements hmc.Manager.
func (m *MemPod) Name() string { return "MemPod" }

// Stats returns a snapshot of the counters.
func (m *MemPod) Stats() Stats { return m.stats }

// RemapCache exposes the remap cache for stats.
func (m *MemPod) RemapCache() *hmc.MetaCache { return m.remapCache }

func segOf(a mem.Addr) seg   { return seg(a >> segShift) }
func (s seg) base() mem.Addr { return mem.Addr(s) << segShift }

// podOf statically interleaves segments across pods; a pod owns matching
// slices of DRAM and NVM so migrations stay pod-local.
func (m *MemPod) podOf(s seg) int { return int(s) % m.cfg.Pods }

func (m *MemPod) locate(s seg) seg {
	if l, ok := m.location[s]; ok {
		return l
	}
	return s
}

func (m *MemPod) occupantOf(slot seg) seg {
	if o, ok := m.occupant[slot]; ok {
		return o
	}
	return slot
}

// TranslateLine implements hmc.Manager.
func (m *MemPod) TranslateLine(addr mem.Addr) mem.Addr {
	s := segOf(addr)
	off := addr - s.base()
	return m.locate(s).base() + off
}

// CheckIntegrity implements hmc.Manager.
func (m *MemPod) CheckIntegrity() error {
	if err := m.ctl.Oracle.VerifyAll(func(d uint64) uint64 {
		return uint64(m.locate(seg(d)))
	}); err != nil {
		return fmt.Errorf("mempod: %w", err)
	}
	return nil
}

// HandleRequest implements hmc.Manager. The remap cache is on the critical
// path; the paper grants the inverted table zero latency, so only the
// forward lookup is timed.
func (m *MemPod) HandleRequest(r *hmc.Request) {
	s := segOf(r.Line)
	if !r.Meta.Writeback && !r.Meta.PageWalk {
		m.observe(s)
	}
	m.remapCache.AccessV(uint64(s), false, r.Meta.V, r.RouteFn())
}

// observe feeds the MEA sketch and fires interval migrations lazily: the
// first access past an interval boundary runs that boundary's migration
// pass (with no traffic there is nothing to migrate, so laziness is exact).
func (m *MemPod) observe(s seg) {
	now := m.lane.Now()
	if m.lastTick == 0 {
		m.lastTick = now
	}
	for m.lastTick+m.cfg.IntervalCycles <= now {
		m.lastTick += m.cfg.IntervalCycles
		m.interval()
	}
	m.pods[m.podOf(s)].mea.Observe(uint64(s))
}

// interval ends one decision epoch: every pod migrates its MEA survivors
// that currently reside in NVM into DRAM, all at once (the swap-burst
// behaviour Section V-A describes), then resets its sketch.
func (m *MemPod) interval() {
	m.stats.Intervals++
	for pi := range m.pods {
		p := &m.pods[pi]
		hot := p.mea.Frequent(m.cfg.MinCount)
		sort.Slice(hot, func(a, b int) bool { return hot[a] < hot[b] }) // determinism
		hotSet := make(map[seg]bool, len(hot))
		for _, h := range hot {
			hotSet[seg(h)] = true
		}
		migrated := 0
		for _, h := range hot {
			if migrated >= m.cfg.MaxMigrationsPerInterval {
				break
			}
			s := seg(h)
			if m.locate(s) < m.fastSegs {
				continue // already in DRAM
			}
			if !m.ctl.Engine.CanStart() {
				// Queue the rest of the interval's burst; they start as
				// buffers free (the burstiness Section V-A describes).
				m.pending = append(m.pending, pendingMig{pod: pi, s: s, hot: hotSet})
				migrated++
				continue
			}
			if m.migrate(pi, s, hotSet) {
				migrated++
			}
		}
		p.mea.Reset()
	}
}

// migrate swaps hot segment s into a DRAM slot of its pod whose current
// data is not hot. Any-to-any flexibility within the pod.
func (m *MemPod) migrate(pi int, s seg, hotSet map[seg]bool) bool {
	slot, ok := m.pickVictim(pi, hotSet)
	if !ok {
		return false
	}
	srcSlot := m.locate(s)
	if m.inflight[slot] != nil || m.inflight[srcSlot] != nil {
		return false
	}
	displaced := m.occupantOf(slot)
	if m.frozen(s) || m.frozen(displaced) {
		return false
	}
	op := &hmc.Op{
		Stages: []hmc.Stage{{
			{Src: srcSlot.base(), Dst: slot.base(), Bytes: SegmentBytes},
			{Src: slot.base(), Dst: srcSlot.base(), Bytes: SegmentBytes},
		}},
	}
	j := &job{segs: []seg{slot, srcSlot}}
	op.OnComplete = func() {
		m.setOccupant(slot, s)
		m.setOccupant(srcSlot, displaced)
		m.ctl.Oracle.Exchange(uint64(slot), uint64(srcSlot))
		m.ctl.IssueLine(m.region.EntryAddr(uint64(slot)), true, hmc.PrioSwap, nil)
		m.remapCache.Prefetch(uint64(s))
		if led := m.ctl.Ledger(); led != nil {
			now := m.lane.Now()
			led.RemapCommitted(j.lid, now)
			led.Evicted(uint64(displaced.base()), now)
		}
		if pm := m.ctl.PageMap(); pm != nil {
			now := m.lane.Now()
			pm.Committed(j.pid, now)
			pm.Evicted(uint64(displaced.base()), now)
		}
		m.stats.Migrations++
		for _, sg := range j.segs {
			delete(m.inflight, sg)
		}
		for _, w := range j.waiters {
			w()
		}
		m.drainPending()
	}
	led := m.ctl.Ledger()
	if led != nil {
		now := m.lane.Now()
		dramB, nvmB := m.ctl.OpBytes(op)
		j.lid = led.SwapStarted(uint64(s.base()), uint64(displaced.base()), true,
			ledger.TrigRegular, now, now, dramB, nvmB)
		op.LedgerID = j.lid
	}
	if pm := m.ctl.PageMap(); pm != nil {
		j.pid = pm.SwapStarted(uint64(s.base()), uint64(displaced.base()), true,
			ledger.TrigRegular, m.lane.Now())
		op.PageMapID = j.pid
	}
	if !m.ctl.Engine.Start(op) {
		led.Abort(j.lid)
		m.ctl.PageMap().Abort(j.pid)
		m.stats.MigrationsDropped++
		return false
	}
	m.inflight[slot] = j
	m.inflight[srcSlot] = j
	return true
}

// drainPending starts queued interval migrations as swap buffers free.
func (m *MemPod) drainPending() {
	for len(m.pending) > 0 && m.ctl.Engine.CanStart() {
		e := m.pending[0]
		m.pending = m.pending[1:]
		if m.locate(e.s) < m.fastSegs {
			continue
		}
		if !m.migrate(e.pod, e.s, e.hot) {
			m.stats.MigrationsDropped++
		}
	}
}

// pickVictim scans the pod's DRAM slots round-robin for one whose resident
// data is not currently hot, not in flight, and not frozen.
func (m *MemPod) pickVictim(pi int, hotSet map[seg]bool) (seg, bool) {
	p := &m.pods[pi]
	n := m.fastSegs / seg(m.cfg.Pods)
	if n == 0 {
		return 0, false
	}
	start := p.nextVictim
	for i := seg(0); i < n; i++ {
		idx := (start + i) % n
		slot := idx*seg(m.cfg.Pods) + seg(pi) // pod-interleaved DRAM slot
		if slot >= m.fastSegs {
			continue
		}
		data := m.occupantOf(slot)
		if hotSet[data] || m.inflight[slot] != nil || m.frozen(data) {
			continue
		}
		if m.pinnedSlot(slot) {
			continue
		}
		p.nextVictim = idx + 1
		return slot, true
	}
	return 0, false
}

// pinnedSlot protects the controller's own remap-table region and page
// tables from being migrated.
func (m *MemPod) pinnedSlot(slot seg) bool {
	a := slot.base()
	if a >= m.region.Base && uint64(a-m.region.Base) < m.region.Bytes {
		return true
	}
	return m.ctl.OS.IsPageTable(mem.PageOf(a))
}

func (m *MemPod) setOccupant(slot, data seg) {
	if slot == data {
		delete(m.occupant, slot)
		delete(m.location, data)
		return
	}
	m.occupant[slot] = data
	m.location[data] = slot
}

// frozen reports whether the page overlapping segment s is DMA-frozen.
func (m *MemPod) frozen(s seg) bool {
	return m.ctl.FrozenByDMA(mem.PageOf(s.base()))
}

// MMUHint implements hmc.Manager: MemPod has no MMU connection.
func (m *MemPod) MMUHint(mmu.Hint) {}

// FreezePage implements hmc.Manager.
func (m *MemPod) FreezePage(page mem.PPN, done func()) {
	base := segOf(page.Addr())
	waitFor := map[*job]struct{}{}
	for i := 0; i < mem.PageSize/SegmentBytes; i++ {
		s := base + seg(i)
		if j, ok := m.inflight[m.locate(s)]; ok {
			waitFor[j] = struct{}{}
		}
		if j, ok := m.inflight[s]; ok {
			waitFor[j] = struct{}{}
		}
	}
	if len(waitFor) == 0 {
		done()
		return
	}
	remaining := len(waitFor)
	for j := range waitFor {
		j.waiters = append(j.waiters, func() {
			remaining--
			if remaining == 0 {
				done()
			}
		})
	}
}

// UnfreezePage implements hmc.Manager.
func (m *MemPod) UnfreezePage(mem.PPN) {}

// ResetStats zeroes the MemPod counters (e.g. after warm-up), keeping all
// sketch and remap state.
func (m *MemPod) ResetStats() {
	m.stats = Stats{}
	m.remapCache.ResetStats()
}
