package pageseer

import (
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workload = "barnes"
	cfg.MaxCores = 2
	cfg.InstrPerCore = 150_000
	cfg.Warmup = 75_000
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Fatalf("IPC = %f", res.IPC)
	}
}

func TestFacadeWorkloadsList(t *testing.T) {
	ws := Workloads()
	if len(ws) != 26 {
		t.Fatalf("Workloads() returned %d names, want 26", len(ws))
	}
	if Suite("lbm") != "SPEC" || Suite("mix1") != "Mixes" {
		t.Fatal("Suite misclassifies")
	}
}

func TestFacadePageSeerConfigOverride(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workload = "barnes"
	cfg.MaxCores = 2
	cfg.InstrPerCore = 100_000
	cfg.Warmup = 50_000
	pcfg := DefaultPageSeerConfig().Scale(cfg.Scale)
	pcfg.NoCorr = true
	sys, err := BuildWithPageSeerConfig(cfg, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys.PageSeer == nil || sys.PageSeer.Name() != "PageSeer-NoCorr" {
		t.Fatal("PageSeer config override not applied")
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFigureRunnerViaFacade(t *testing.T) {
	opts := QuickFigureOptions()
	opts.Workloads = []string{"barnes"}
	opts.InstrPerCore = 100_000
	opts.Warmup = 50_000
	r := NewFigureRunner(opts)
	res, err := r.Run("barnes", SchemePageSeer)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "barnes" {
		t.Fatalf("wrong workload in results: %q", res.Workload)
	}
}
