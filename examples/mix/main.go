// Mix: reproduce the paper's multi-programmed scenario — four different
// benchmarks sharing one hybrid memory system — and compare how each
// management scheme handles the competition for DRAM.
//
// This is the workload class where the PCT's per-PID tracking matters: the
// controller must not correlate pages across processes (Section III-C2).
package main

import (
	"fmt"
	"log"

	"pageseer"
)

func main() {
	const mix = "mix6" // libquantum-lbm-mcf-bwaves, the most memory-hungry mix

	fmt.Printf("running %s (%s suite) under four schemes\n\n", mix, pageseer.Suite(mix))
	fmt.Printf("%-16s %8s %10s %8s %8s %8s\n", "scheme", "IPC", "AMMAT", "DRAM%", "NVM%", "pos%")

	type outcome struct {
		scheme pageseer.Scheme
		ipc    float64
	}
	var outcomes []outcome
	for _, scheme := range []pageseer.Scheme{
		pageseer.SchemeStatic,
		pageseer.SchemeMemPod,
		pageseer.SchemePoM,
		pageseer.SchemePageSeer,
	} {
		cfg := pageseer.DefaultConfig()
		cfg.Workload = mix
		cfg.Scheme = scheme
		sys, err := pageseer.Build(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			log.Fatal(err)
		}
		d, n, _ := res.ServiceBreakdown()
		pos, _, _ := res.AccessEffectiveness()
		fmt.Printf("%-16s %8.3f %10.1f %7.1f%% %7.1f%% %7.1f%%\n",
			scheme, res.IPC, res.AMMAT, d*100, n*100, pos*100)
		outcomes = append(outcomes, outcome{scheme, res.IPC})
	}

	best := outcomes[0]
	for _, o := range outcomes[1:] {
		if o.ipc > best.ipc {
			best = o
		}
	}
	fmt.Printf("\nbest scheme for %s: %s\n", mix, best.scheme)
}
