// Tuning: sweep PageSeer's hardware knobs — the PCTc prefetch threshold and
// the Swap Driver bandwidth heuristic — on one workload, the kind of design
// exploration Table II's parameters came from.
package main

import (
	"fmt"
	"log"

	"pageseer"
)

func main() {
	const wl = "lbm"
	base := pageseer.DefaultConfig()
	base.Workload = wl
	base.InstrPerCore = 1_500_000
	base.Warmup = 750_000

	fmt.Printf("PageSeer design sweep on %s\n\n", wl)

	fmt.Println("PCTc prefetch-swap threshold (paper value: 14):")
	fmt.Printf("  %9s %8s %10s %12s %10s\n", "threshold", "IPC", "AMMAT", "swaps/Ki", "accuracy")
	for _, threshold := range []uint32{6, 10, 14, 20, 28} {
		pcfg := pageseer.DefaultPageSeerConfig().Scale(base.Scale)
		pcfg.PCTThreshold = threshold
		pcfg.AccuracyTarget = uint64(threshold)
		res := run(base, pcfg)
		fmt.Printf("  %9d %8.3f %10.1f %12.3f %9.1f%%\n",
			threshold, res.IPC, res.AMMAT, res.SwapsPerKI, res.PrefetchAccuracy*100)
	}

	fmt.Println("\nSwap Driver bandwidth heuristic (Section V-B):")
	fmt.Printf("  %9s %8s %10s %12s %10s\n", "gate", "IPC", "AMMAT", "swaps/Ki", "declined")
	for _, gate := range []float64{0.5, 0.7, 0.9, 1.01 /* never */} {
		pcfg := pageseer.DefaultPageSeerConfig().Scale(base.Scale)
		pcfg.BWSatFraction = gate
		label := fmt.Sprintf("%.2f", gate)
		if gate > 1 {
			label = "off"
		}
		res := run(base, pcfg)
		fmt.Printf("  %9s %8.3f %10.1f %12.3f %10d\n",
			label, res.IPC, res.AMMAT, res.SwapsPerKI, res.PS.DeclinedBW)
	}
}

func run(cfg pageseer.Config, pcfg pageseer.PageSeerConfig) pageseer.Results {
	sys, err := pageseer.BuildWithPageSeerConfig(cfg, pcfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res
}
