// Quickstart: build one PageSeer system, run it, and read the headline
// numbers — the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"

	"pageseer"
)

func main() {
	// A laptop-scale configuration: 1/128 of the paper's memory system.
	cfg := pageseer.DefaultConfig()
	cfg.Workload = "miniFE" // any Table III name; see pageseer.Workloads()
	cfg.Scheme = pageseer.SchemePageSeer
	cfg.InstrPerCore = 1_000_000
	cfg.Warmup = 500_000

	sys, err := pageseer.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}

	dram, nvm, buf := res.ServiceBreakdown()
	fmt.Printf("workload %s on %d cores under %s\n", res.Workload, res.Cores, res.Scheme)
	fmt.Printf("  IPC    %.3f\n", res.IPC)
	fmt.Printf("  AMMAT  %.1f CPU cycles\n", res.AMMAT)
	fmt.Printf("  served from DRAM %.1f%%, NVM %.1f%%, swap buffers %.1f%%\n",
		dram*100, nvm*100, buf*100)
	fmt.Printf("  swaps  %.3f per kilo-instruction\n", res.SwapsPerKI)

	// Compare against running the same workload with no management at all.
	cfg.Scheme = pageseer.SchemeStatic
	sys2, err := pageseer.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	base, err := sys2.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nno-swap baseline: IPC %.3f, AMMAT %.1f\n", base.IPC, base.AMMAT)
	if base.IPC > 0 {
		fmt.Printf("PageSeer speedup over static placement: %+.1f%%\n", (res.IPC/base.IPC-1)*100)
	}
}
