// Custom-policy: plug a user-defined management scheme into the hybrid
// memory controller framework and race it against PageSeer.
//
// The framework accepts any hmc.Manager: this example implements
// "Eager" — an aggressive CAMEO-flavoured policy that swaps an NVM page to
// DRAM on its very first miss (no history, no thresholds). It demonstrates
// the full extension surface: remap state, the swap engine with its
// buffers, the integrity oracle, and DMA freezing. The result also shows
// *why* the paper needs history: eager swapping wins when reuse is long,
// and drowns in its own traffic when it is not.
package main

import (
	"fmt"
	"log"

	"pageseer"
	"pageseer/internal/hmc"
	"pageseer/internal/mem"
	"pageseer/internal/mmu"
	"pageseer/internal/sim"
)

// Eager is the custom manager: first NVM miss -> immediate page swap.
type Eager struct {
	ctl      *hmc.Controller
	remap    map[mem.PPN]mem.PPN
	inflight map[mem.PPN]*job
	next     mem.PPN // round-robin DRAM victim cursor
	swaps    uint64
}

type job struct{ waiters []func() }

// NewEager installs the policy on a controller.
func NewEager(ctl *hmc.Controller) *Eager {
	e := &Eager{
		ctl:      ctl,
		remap:    make(map[mem.PPN]mem.PPN),
		inflight: make(map[mem.PPN]*job),
	}
	ctl.SetManager(e)
	return e
}

func (e *Eager) Name() string { return "Eager" }

func (e *Eager) frameOf(p mem.PPN) mem.PPN {
	if f, ok := e.remap[p]; ok {
		return f
	}
	return p
}

// TranslateLine implements hmc.Manager.
func (e *Eager) TranslateLine(a mem.Addr) mem.Addr {
	page := mem.PageOf(a)
	return e.frameOf(page).Addr() + (a - page.Addr())
}

// CheckIntegrity implements hmc.Manager.
func (e *Eager) CheckIntegrity() error {
	return e.ctl.Oracle.VerifyAll(func(d uint64) uint64 {
		return uint64(e.frameOf(mem.PPN(d)))
	})
}

// HandleRequest implements hmc.Manager.
func (e *Eager) HandleRequest(r *hmc.Request) {
	page := mem.PageOf(r.Line)
	if !r.Meta.Writeback && !r.Meta.PageWalk &&
		!e.ctl.Layout.IsDRAMPage(e.frameOf(page)) {
		e.trySwap(page)
	}
	actual := e.TranslateLine(r.Line)
	if r.Meta.Writeback {
		if !e.ctl.Engine.TryService(actual, nil, func() {}) {
			e.ctl.ServeMemory(r, actual)
		}
		return
	}
	if e.ctl.Engine.TryService(actual, r.Meta.V, func() { e.ctl.ServeBuffer(r) }) {
		return
	}
	e.ctl.ServeMemory(r, actual)
}

func (e *Eager) trySwap(page mem.PPN) {
	if e.inflight[page] != nil {
		return
	}
	if _, swapped := e.remap[page]; swapped {
		return
	}
	if !e.ctl.Engine.CanStart() || e.ctl.FrozenByDMA(page) {
		return
	}
	// Round-robin victim over DRAM frames, skipping page tables, in-flight
	// frames and frames already hosting a swapped page.
	dramPages := mem.PPN(e.ctl.Layout.DRAMPages())
	var victim mem.PPN
	found := false
	for i := mem.PPN(0); i < dramPages; i++ {
		f := (e.next + i) % dramPages
		if e.ctl.OS.IsPageTable(f) || e.inflight[f] != nil || e.ctl.FrozenByDMA(f) {
			continue
		}
		if _, swapped := e.remap[f]; swapped {
			continue
		}
		victim = f
		e.next = f + 1
		found = true
		break
	}
	if !found {
		return
	}
	j := &job{}
	e.inflight[page], e.inflight[victim] = j, j
	op := &hmc.Op{
		Stages: []hmc.Stage{{
			{Src: page.Addr(), Dst: victim.Addr(), Bytes: mem.PageSize},
			{Src: victim.Addr(), Dst: page.Addr(), Bytes: mem.PageSize},
		}},
		OnComplete: func() {
			e.remap[page], e.remap[victim] = victim, page
			e.ctl.Oracle.Exchange(uint64(page), uint64(victim))
			e.swaps++
			delete(e.inflight, page)
			delete(e.inflight, victim)
			for _, w := range j.waiters {
				w()
			}
		},
	}
	if !e.ctl.Engine.Start(op) {
		delete(e.inflight, page)
		delete(e.inflight, victim)
	}
}

// MMUHint implements hmc.Manager (Eager has no use for hints).
func (e *Eager) MMUHint(mmu.Hint) {}

// FreezePage implements hmc.Manager.
func (e *Eager) FreezePage(p mem.PPN, done func()) {
	if j, ok := e.inflight[p]; ok {
		j.waiters = append(j.waiters, done)
		return
	}
	done()
}

// UnfreezePage implements hmc.Manager.
func (e *Eager) UnfreezePage(mem.PPN) {}

func main() {
	const wl = "barnes"
	cfg := pageseer.DefaultConfig()
	cfg.Workload = wl
	cfg.MaxCores = 4
	cfg.InstrPerCore = 1_000_000
	cfg.Warmup = 500_000

	// The driver wires cores, TLBs, caches and memories around whatever
	// manager the factory installs.
	var eager *Eager
	sys, err := sim.BuildWithManager(cfg, func(ctl *hmc.Controller) hmc.Manager {
		eager = NewEager(ctl)
		return eager
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom 'Eager' policy on %s: IPC %.3f, AMMAT %.1f, %d swaps\n",
		wl, res.IPC, res.AMMAT, eager.swaps)

	// And PageSeer on the identical workload via the facade.
	cfg2 := cfg
	cfg2.Scheme = pageseer.SchemePageSeer
	sys2, err := pageseer.Build(cfg2)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := sys2.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PageSeer on %s:              IPC %.3f, AMMAT %.1f, %.0f swaps\n",
		wl, res2.IPC, res2.AMMAT, res2.SwapsPerKI*float64(res2.Instructions)/1000)
}
