#!/bin/sh
# resume-smoke: the campaign-durability gate. Run a journaled quick
# campaign, SIGKILL it mid-grid (after at least one run has committed to
# the journal), resume it with -resume, and require the resumed figure
# output to be byte-identical to an uninterrupted reference run.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

$GO build -o "$tmp/paper-figures" ./cmd/paper-figures

# 3 workloads x 3 schemes = 9 runs; -j 1 keeps the grid sequential so the
# kill lands mid-campaign rather than after it.
FLAGS="-quick -workloads lbm,GemsFDTD,miniFE -fig14 -quiet -j 1"
jdir="$tmp/journal"
total=9

# Uninterrupted reference.
"$tmp/paper-figures" $FLAGS >"$tmp/ref.out"

# Journaled campaign, SIGKILLed once at least one run has committed.
"$tmp/paper-figures" $FLAGS -journal "$jdir" >"$tmp/killed.out" 2>/dev/null &
pid=$!
i=0
while [ $i -lt 400 ]; do
    if [ -f "$jdir/journal.psj" ]; then
        lines=$(wc -l <"$jdir/journal.psj")
    else
        lines=0
    fi
    if [ "$lines" -ge 2 ]; then
        break
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
        break
    fi
    sleep 0.05
    i=$((i + 1))
done
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

if [ ! -f "$jdir/journal.psj" ]; then
    echo "resume-smoke: campaign never created its journal" >&2
    exit 1
fi
records=$(($(wc -l <"$jdir/journal.psj") - 1))
if [ "$records" -lt 1 ]; then
    echo "resume-smoke: no run committed to the journal before the kill" >&2
    exit 1
fi
echo "resume-smoke: SIGKILLed campaign with $records/$total run(s) journaled"

# Resume: completed runs replay from the journal, the casualties re-execute.
"$tmp/paper-figures" $FLAGS -journal "$jdir" -resume >"$tmp/resumed.out" 2>"$tmp/resumed.err"
if ! grep -q "journal: resuming" "$tmp/resumed.err"; then
    echo "resume-smoke: resumed campaign did not report the replay" >&2
    cat "$tmp/resumed.err" >&2
    exit 1
fi

if ! cmp -s "$tmp/ref.out" "$tmp/resumed.out"; then
    echo "resume-smoke: resumed output differs from the uninterrupted reference" >&2
    diff "$tmp/ref.out" "$tmp/resumed.out" >&2 || true
    exit 1
fi
echo "resume-smoke: resumed campaign output byte-identical to the reference"
