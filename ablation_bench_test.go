package pageseer

import (
	"testing"

	"pageseer/internal/core"
	"pageseer/internal/sim"
)

// Ablation benches for the design choices DESIGN.md calls out: each sweeps
// one PageSeer hardware knob on a fixed workload and reports the resulting
// IPC as a metric, so `go test -bench Ablation` doubles as a design-space
// record. Budgets are small; shapes, not absolutes, are the point.

func ablationConfig() Config {
	cfg := DefaultConfig()
	cfg.Workload = "miniFE"
	cfg.MaxCores = 4
	cfg.InstrPerCore = 800_000
	cfg.Warmup = 400_000
	return cfg
}

func runWith(b *testing.B, pcfg core.Config) Results {
	b.Helper()
	sys, err := sim.BuildWithPageSeerConfig(ablationConfig(), pcfg)
	if err != nil {
		b.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func scaledDefault() core.Config {
	return core.DefaultConfig().Scale(ablationConfig().Scale)
}

// BenchmarkAblationPCTThreshold sweeps the prefetch-swap threshold
// (Table II value: 14). Lower thresholds swap earlier but risk inaccurate
// prefetches; higher ones converge to HPT-only behaviour.
func BenchmarkAblationPCTThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, thr := range []uint32{7, 14, 28} {
			pcfg := scaledDefault()
			pcfg.PCTThreshold = thr
			pcfg.AccuracyTarget = uint64(thr)
			res := runWith(b, pcfg)
			b.ReportMetric(res.IPC, "ipc-thr"+itoa(int(thr)))
		}
	}
}

// BenchmarkAblationHPTThreshold sweeps the regular-swap threshold
// (Table II value: 6) — the paper notes it must sit below the PCTc's.
func BenchmarkAblationHPTThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, thr := range []uint32{3, 6, 12} {
			pcfg := scaledDefault()
			pcfg.HPTThreshold = thr
			res := runWith(b, pcfg)
			b.ReportMetric(res.IPC, "ipc-thr"+itoa(int(thr)))
		}
	}
}

// BenchmarkAblationColors sweeps the same-color constraint (PRT
// associativity, Figure 4): fewer colors means more DRAM frames per color
// (more placement freedom) but a larger per-lookup search; more colors
// approaches direct mapping and its conflicts.
func BenchmarkAblationColors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := scaledDefault()
		for _, frac := range []int{4, 1} { // colors = entries/ways/frac
			pcfg := base
			pcfg.PRTcEntries = base.PRTcEntries / frac
			res := runWith(b, pcfg)
			b.ReportMetric(res.IPC, "ipc-colors"+itoa(pcfg.PRTcEntries/pcfg.PRTcWays))
		}
	}
}

// BenchmarkAblationNoBWOpt measures the Swap Driver bandwidth heuristic
// (Section V-B / Figure 11) as an IPC effect rather than a swap-rate one.
func BenchmarkAblationNoBWOpt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on := scaledDefault()
		off := scaledDefault()
		off.BWOpt = false
		rOn := runWith(b, on)
		rOff := runWith(b, off)
		b.ReportMetric(rOn.IPC/rOff.IPC, "ipc-bwopt-vs-off")
		b.ReportMetric(rOff.SwapsPerKI/maxf(rOn.SwapsPerKI, 1e-9), "swaprate-off-vs-on")
	}
}

// BenchmarkAblationFilterSize sweeps the Filter table (Table II: 128
// entries): too small and flurry histories are folded back before they
// complete, losing follower confirmations.
func BenchmarkAblationFilterSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, n := range []int{16, 128} {
			pcfg := scaledDefault()
			pcfg.FilterEntries = n
			res := runWith(b, pcfg)
			b.ReportMetric(res.IPC, "ipc-filter"+itoa(n))
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
