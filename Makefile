# Development targets. `make tier1` is the pre-PR check: it must pass
# before any change lands (see README.md "Testing").

GO ?= go

.PHONY: tier1 vet build test race benchsmoke bench campaign-bench allocguard benchguard parallel-smoke parallel effectiveness-smoke cpi-smoke pagemap-smoke sample-smoke ledger-overhead invariants chaos-smoke chaos resume-smoke fuzz-validate fuzz-checkpoint trace-demo

## tier1: the full pre-PR gate — vet, build, race-enabled tests, a
## one-shot figure-campaign smoke bench, the alloc-budget guards, the
## campaign-throughput regression gate, the parallel-executor differential
## under -race, the swap-provenance effectiveness smoke, the
## cycle-attribution smoke, the address-space telemetry smoke, the
## sampled-execution accuracy/speedup gate, the invariant-audit gate, a
## fault-injection smoke run, and the kill-and-resume durability gate.
tier1: vet build race benchsmoke allocguard benchguard parallel-smoke effectiveness-smoke cpi-smoke pagemap-smoke sample-smoke invariants chaos-smoke resume-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## benchsmoke: one iteration of the headline figure bench — catches
## campaign-path regressions without the cost of a full bench sweep.
benchsmoke:
	$(GO) test -run '^$$' -bench BenchmarkFigure14 -benchtime 1x .

## bench: the full figure + ablation bench sweep (slow).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

## campaign-bench: regenerate BENCH_campaign.json from the quick campaign,
## plus a sampled-mode rerun of the same grid so the record also carries
## the sampled-execution wall-clock trajectory (entries distinguished by
## their sample_windows geometry; benchguard keeps the modes apart).
## The note pins the host core count: jrun speedups only mean anything
## against a record that says how many cores the baseline had to work with.
campaign-bench:
	$(GO) run ./cmd/paper-figures -quick -all -quiet -benchjson BENCH_campaign.json \
		-bench-sampled 16,1000,1000 \
		-benchnote "host: $$(nproc) CPU(s); jrun 1 (serial reference engine); sampled entries: 16 windows x 1000 instr, 1000-instr warm-ups"

## allocguard: testing.AllocsPerRun proofs that (a) the observability hot
## path pays zero allocations with sinks disabled, (b) a disabled
## swap-provenance ledger is free on every hook, and (c) the full demand
## path stays under its allocs-per-retired-instruction budget in steady
## state. Run without -race (race instrumentation allocates and would
## false-fail).
allocguard:
	$(GO) test -run TestZeroAlloc -count=1 ./internal/obs ./internal/obs/ledger ./internal/obs/attrib ./internal/obs/pagemap ./internal/sim

## benchguard: re-run the quick campaign and fail if per-run
## events_per_sec (geomean over the workload x scheme grid) regresses
## more than 10% against the committed BENCH_campaign.json. A second,
## ledger-on quick campaign is then compared against the fresh ledger-off
## record with -warnonly: the swap-provenance ledger's overhead (5%
## target) is reported but never gates, since the sink is opt-in. A
## final sampled-mode campaign (-sample) is compared on wall-clock with
## -wall -warnonly: the per-run speedup sampling buys is reported, never
## gated (the accuracy gate lives in sample-smoke).
benchguard:
	$(GO) run ./cmd/paper-figures -quick -all -quiet -benchjson .benchguard_head.json
	$(GO) run ./cmd/benchguard -baseline BENCH_campaign.json -head .benchguard_head.json -tolerance 0.10
	$(GO) run ./cmd/paper-figures -quick -all -effectiveness -quiet -benchjson .benchguard_ledger.json
	$(GO) run ./cmd/benchguard -baseline .benchguard_head.json -head .benchguard_ledger.json -tolerance 0.05 -warnonly -label "ledger-on overhead"
	$(GO) run ./cmd/paper-figures -quick -all -cpistack -quiet -benchjson .benchguard_cpi.json
	$(GO) run ./cmd/benchguard -baseline .benchguard_head.json -head .benchguard_cpi.json -tolerance 0.05 -warnonly -label "cpi-on overhead"
	$(GO) run ./cmd/paper-figures -quick -all -churn -quiet -benchjson .benchguard_pagemap.json
	$(GO) run ./cmd/benchguard -baseline .benchguard_head.json -head .benchguard_pagemap.json -tolerance 0.05 -warnonly -label "pagemap-on overhead"
	$(GO) run ./cmd/paper-figures -quick -all -quiet -sample 16 -sample-window 1000 -sample-warmup 1000 \
		-benchjson .benchguard_sampled.json -benchnote "sampled: 16 windows x 1000 instr, 1000-instr warm-ups"
	$(GO) run ./cmd/benchguard -baseline .benchguard_head.json -head .benchguard_sampled.json -wall -warnonly -label "sampled-mode speedup"
	@rm -f .benchguard_head.json .benchguard_ledger.json .benchguard_cpi.json .benchguard_pagemap.json .benchguard_sampled.json

## parallel-smoke: the epoch-barrier executor's correctness gate — the
## full-system differential (all five schemes plus the ablation, Results
## DeepEqual at jrun 1 vs jrun 4) and the engine-level ordering, audit,
## and failure-path tests, all under the race detector. This is also the
## executor's data-race gate: a mis-sharded send into a lane that is
## recording in the same run is exactly a data race, and -race is the
## detector that owns it.
parallel-smoke:
	$(GO) test -race -count=1 -run 'TestParallel|TestMisSharded|TestBarrierResidue|TestLanePanic|TestSerialPathUntouched|TestShardViolation|TestCPIParallelDifferential|TestPageMapParallelDifferential' ./internal/engine ./internal/sim

## parallel: the PAGESEER_PARALLEL=1 matrix — rerun the invariant and
## effectiveness smokes with every run on the epoch executor at jrun 4,
## proving the audits and the ledger see the identical machine the serial
## engine builds.
parallel: parallel-smoke
	PAGESEER_PARALLEL=1 PAGESEER_INVARIANTS_FULL=1 $(GO) test -run TestAuditPassesAndMatchesBaseline -count=1 ./internal/sim
	PAGESEER_PARALLEL=1 $(GO) test -run 'TestEffectivenessSmoke|TestEffectivenessAllSchemes|TestChaosSmoke|TestChaosDeterministic' -count=1 ./internal/sim

## effectiveness-smoke: run one PageSeer quick workload with the
## swap-provenance ledger armed and assert the acceptance bar: all three
## hardware trigger classes fire, accuracy/coverage stay in [0,1], and
## the conservation audit (useful + unused + open == started) holds.
effectiveness-smoke:
	$(GO) test -run TestEffectivenessSmoke -count=1 ./internal/sim

## cpi-smoke: run one PageSeer quick workload with cycle attribution armed
## and assert the acceptance bar: every trigger class the ledger
## distinguishes retires requests, at least 8 blame components carry
## cycles, no cycles retire unattributed, per-scheme blame conservation
## (component cycles == end-to-end latency, all six schemes), the
## mutation audit catches a mis-stamped stage, and an attribution-off run
## stays byte-identical.
cpi-smoke:
	$(GO) test -run 'TestCPISmoke|TestCPIConservation|TestCPIMutationFailsAudit' -count=1 ./internal/sim

## pagemap-smoke: run the quick GemsFDTD workload with the address-space
## telemetry table armed and assert the acceptance bar: demand heat in all
## four service sources, a coherent hot-set profile, swap churn and NVM
## wear recorded, flap detection firing on the scheme that thrashes (PoM),
## per-scheme conservation audits green (trigger mix, read/write law,
## residency ground truth — all six schemes), the mutation audit catching
## a phantom hook, the sampled-mode functional feed, and a pagemap-off run
## staying byte-identical.
pagemap-smoke:
	$(GO) test -run 'TestPageMapSmoke|TestPageMapFlapDetection|TestPageMapConservation|TestPageMapMutationFailsAudit|TestPageMapSampled' -count=1 ./internal/sim

## sample-smoke: the sampled-execution acceptance gate — on the quick
## GemsFDTD run the committed geometry (16 windows of 1000 instructions,
## 1000-instruction warm-ups) must reproduce the detailed reference's IPC
## within 2% and swap count within 5%, hold every conservation audit
## inside the windows, and (with the env var set, which this target does)
## finish at least 5x faster wall-clock. Run without -race: the speedup
## bar is a timing assertion.
sample-smoke:
	PAGESEER_SAMPLE_SPEEDUP=1 $(GO) test -run TestSampleSmoke -count=1 ./internal/sim

## invariants: the quick campaign's workloads with end-of-run audits and
## the liveness watchdog armed, asserting Results stay byte-identical to
## audits-off (the audit observes, never perturbs).
invariants:
	PAGESEER_INVARIANTS_FULL=1 $(GO) test -run TestAuditPassesAndMatchesBaseline -count=1 ./internal/sim

## chaos-smoke: one deterministic fault-injection run with audits on —
## the cheap always-on slice of the chaos matrix.
chaos-smoke:
	$(GO) test -run 'TestChaosSmoke|TestChaosDeterministic' -count=1 ./internal/sim

## chaos: the full fault matrix (every injectable fault x scheme x seed,
## audits on) under the race detector.
chaos:
	PAGESEER_CHAOS=1 $(GO) test -race -run 'TestChaosMatrix|TestChaosSmoke' -count=1 ./internal/sim

## resume-smoke: the campaign-durability gate — SIGKILL a journaled quick
## campaign mid-grid, resume it with -resume (completed runs replay from
## the journal, only the casualties re-execute), and require the resumed
## figure output to be byte-identical to an uninterrupted reference.
resume-smoke:
	GO="$(GO)" sh scripts/resume_smoke.sh

## fuzz-validate: fuzz Config.Validate — it must never panic and never
## disagree with Build.
fuzz-validate:
	$(GO) test -run '^$$' -fuzz FuzzConfigValidate -fuzztime 20s ./internal/sim

## fuzz-checkpoint: fuzz the checkpoint round-trip over (scheme, quiesce
## point, sampled-mode) — a restored run must always reproduce the
## uninterrupted run's Results exactly.
fuzz-checkpoint:
	$(GO) test -run '^$$' -fuzz FuzzCheckpointQuiesce -fuzztime 20s ./internal/sim

## trace-demo: produce a sample Perfetto trace + epoch timeline from a
## quick run (open trace-demo.json at https://ui.perfetto.dev).
trace-demo:
	$(GO) run ./cmd/pageseer-sim -workload lbm -scheme pageseer \
		-trace trace-demo.json -timeline timeline-demo.csv
