# Development targets. `make tier1` is the pre-PR check: it must pass
# before any change lands (see README.md "Testing").

GO ?= go

.PHONY: tier1 vet build test race benchsmoke bench campaign-bench

## tier1: the full pre-PR gate — vet, build, race-enabled tests, and a
## one-shot figure-campaign smoke bench.
tier1: vet build race benchsmoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## benchsmoke: one iteration of the headline figure bench — catches
## campaign-path regressions without the cost of a full bench sweep.
benchsmoke:
	$(GO) test -run '^$$' -bench BenchmarkFigure14 -benchtime 1x .

## bench: the full figure + ablation bench sweep (slow).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

## campaign-bench: regenerate BENCH_campaign.json from the quick campaign.
campaign-bench:
	$(GO) run ./cmd/paper-figures -quick -all -quiet -benchjson BENCH_campaign.json
