# Development targets. `make tier1` is the pre-PR check: it must pass
# before any change lands (see README.md "Testing").

GO ?= go

.PHONY: tier1 vet build test race benchsmoke bench campaign-bench allocguard trace-demo

## tier1: the full pre-PR gate — vet, build, race-enabled tests, a
## one-shot figure-campaign smoke bench, and the zero-alloc guard for the
## disabled observability sinks.
tier1: vet build race benchsmoke allocguard

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## benchsmoke: one iteration of the headline figure bench — catches
## campaign-path regressions without the cost of a full bench sweep.
benchsmoke:
	$(GO) test -run '^$$' -bench BenchmarkFigure14 -benchtime 1x .

## bench: the full figure + ablation bench sweep (slow).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

## campaign-bench: regenerate BENCH_campaign.json from the quick campaign.
campaign-bench:
	$(GO) run ./cmd/paper-figures -quick -all -quiet -benchjson BENCH_campaign.json

## allocguard: testing.AllocsPerRun proof that the hot path pays zero
## allocations per request with the observability sinks disabled. Run
## without -race (race instrumentation allocates and would false-fail).
allocguard:
	$(GO) test -run TestZeroAlloc -count=1 ./internal/obs

## trace-demo: produce a sample Perfetto trace + epoch timeline from a
## quick run (open trace-demo.json at https://ui.perfetto.dev).
trace-demo:
	$(GO) run ./cmd/pageseer-sim -workload lbm -scheme pageseer \
		-trace trace-demo.json -timeline timeline-demo.csv
