package pageseer

import (
	"testing"

	"pageseer/internal/figures"
	"pageseer/internal/sim"
	"pageseer/internal/stats"
)

// The benches regenerate each table and figure of the paper's evaluation at
// a reduced scale (QuickFigureOptions: a representative workload subset,
// small instruction budgets) so `go test -bench .` completes in minutes.
// The full campaign is `go run ./cmd/paper-figures -all`.
//
// Headline values are attached as custom benchmark metrics, so bench output
// doubles as a regression record for the reproduced shapes.

func quickRunner() *figures.Runner {
	return figures.NewRunner(figures.QuickOptions())
}

// benchOnce runs fn once per bench iteration (each iteration is a full
// simulation campaign; b.N is normally 1).
func benchOnce(b *testing.B, fn func(r *figures.Runner)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		fn(quickRunner())
	}
}

func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if figures.Table1(figures.QuickOptions().Scale) == "" {
			b.Fatal("empty Table I")
		}
	}
}

func BenchmarkTable2Parameters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if figures.Table2(figures.QuickOptions().Scale) == "" {
			b.Fatal("empty Table II")
		}
	}
}

func BenchmarkTable3Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if figures.Table3() == "" {
			b.Fatal("empty Table III")
		}
	}
}

func BenchmarkFigure7ServiceBreakdown(b *testing.B) {
	benchOnce(b, func(r *figures.Runner) {
		rows, err := figures.Figure7(r)
		if err != nil {
			b.Fatal(err)
		}
		var psDRAM []float64
		for _, row := range rows {
			if row.Scheme == sim.SchemePageSeer {
				psDRAM = append(psDRAM, row.DRAM)
			}
		}
		b.ReportMetric(stats.Mean(psDRAM)*100, "pageseer-dram-%")
	})
}

func BenchmarkFigure8Effectiveness(b *testing.B) {
	benchOnce(b, func(r *figures.Runner) {
		rows, err := figures.Figure8(r)
		if err != nil {
			b.Fatal(err)
		}
		var pos, neg []float64
		for _, row := range rows {
			if row.Scheme == sim.SchemePageSeer {
				pos = append(pos, row.Positive)
				neg = append(neg, row.Negative)
			}
		}
		b.ReportMetric(stats.Mean(pos)*100, "positive-%")
		b.ReportMetric(stats.Mean(neg)*100, "negative-%")
	})
}

func BenchmarkFigure9PrefetchAccuracy(b *testing.B) {
	benchOnce(b, func(r *figures.Runner) {
		rows, err := figures.Figure9(r)
		if err != nil {
			b.Fatal(err)
		}
		var acc []float64
		for _, row := range rows {
			if row.Tracked > 0 {
				acc = append(acc, row.Accuracy)
			}
		}
		b.ReportMetric(stats.Mean(acc)*100, "accuracy-%")
	})
}

func BenchmarkFigure10SwapComposition(b *testing.B) {
	benchOnce(b, func(r *figures.Runner) {
		rows, err := figures.Figure10(r)
		if err != nil {
			b.Fatal(err)
		}
		var pref []float64
		for _, row := range rows {
			if row.TotalSwaps > 0 {
				pref = append(pref, row.MMUFrac+row.PrefetchFrac)
			}
		}
		b.ReportMetric(stats.Mean(pref)*100, "prefetch-swap-%")
	})
}

func BenchmarkFigure11SwapRate(b *testing.B) {
	benchOnce(b, func(r *figures.Runner) {
		rows, err := figures.Figure11(r)
		if err != nil {
			b.Fatal(err)
		}
		var w, wo []float64
		for _, row := range rows {
			w = append(w, row.WithBW)
			wo = append(wo, row.WithoutBW)
		}
		b.ReportMetric(stats.Mean(w), "swapsPerKI-bwopt")
		b.ReportMetric(stats.Mean(wo), "swapsPerKI-nobw")
	})
}

func BenchmarkFigure12PageWalks(b *testing.B) {
	benchOnce(b, func(r *figures.Runner) {
		rows, err := figures.Figure12(r)
		if err != nil {
			b.Fatal(err)
		}
		var miss, hit []float64
		for _, row := range rows {
			miss = append(miss, row.PTEMissRate)
			hit = append(hit, row.MMUDriverHitRate)
		}
		b.ReportMetric(stats.Mean(miss)*100, "pte-miss-%")
		b.ReportMetric(stats.Mean(hit)*100, "driver-hit-%")
	})
}

func BenchmarkFigure13PRTcWait(b *testing.B) {
	benchOnce(b, func(r *figures.Runner) {
		rows, err := figures.Figure13(r)
		if err != nil {
			b.Fatal(err)
		}
		var red []float64
		for _, row := range rows {
			red = append(red, row.Reduction)
		}
		b.ReportMetric(stats.Mean(red)*100, "wait-reduction-%")
	})
}

func BenchmarkFigure14Headline(b *testing.B) {
	benchOnce(b, func(r *figures.Runner) {
		sum, err := figures.Figure14(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric((sum.IPCvsPoM-1)*100, "ipc-vs-pom-%")
		b.ReportMetric((sum.IPCvsMemPod-1)*100, "ipc-vs-mempod-%")
		b.ReportMetric((1-sum.AMMATvsPoM)*100, "ammat-cut-vs-pom-%")
		b.ReportMetric((1-sum.AMMATvsMemPod)*100, "ammat-cut-vs-mempod-%")
	})
}

func BenchmarkAblationNoCorr(b *testing.B) {
	benchOnce(b, func(r *figures.Runner) {
		rows, err := figures.Ablation(r)
		if err != nil {
			b.Fatal(err)
		}
		var sp []float64
		for _, row := range rows {
			sp = append(sp, row.Speedup)
		}
		b.ReportMetric((stats.GeoMean(sp)-1)*100, "corr-speedup-%")
	})
}

// BenchmarkSingleRun measures raw simulator throughput (simulated
// instructions per wall second) for capacity planning.
func BenchmarkSingleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.Workload = "lbm"
		cfg.InstrPerCore = 300_000
		cfg.Warmup = 100_000
		sys, err := Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Instructions), "instructions")
	}
}

// BenchmarkExtensionCAMEO compares the CAMEO extension baseline against
// PageSeer on one workload — the fine-granularity end of the design space
// the paper's background section lays out.
func BenchmarkExtensionCAMEO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var ipc [2]float64
		for j, sch := range []Scheme{SchemeCAMEO, SchemePageSeer} {
			cfg := DefaultConfig()
			cfg.Workload = "barnes"
			cfg.Scheme = sch
			cfg.MaxCores = 4
			cfg.InstrPerCore = 400_000
			cfg.Warmup = 200_000
			sys, err := Build(cfg)
			if err != nil {
				b.Fatal(err)
			}
			res, err := sys.Run()
			if err != nil {
				b.Fatal(err)
			}
			ipc[j] = res.IPC
		}
		b.ReportMetric(ipc[1]/ipc[0], "pageseer-vs-cameo-ipc")
	}
}
