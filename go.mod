module pageseer

go 1.22
